package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic random-number generator
// (splitmix64-seeded xoshiro256**). Every stochastic component of a model
// owns its own RNG stream, derived from the experiment seed and a component
// label, so adding a component never perturbs the draws seen by another.
type RNG struct {
	s [4]uint64
	// spare holds a cached second normal variate from the Box-Muller pair.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded from seed via splitmix64, which maps even
// adjacent seeds to well-separated states.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Fork derives an independent stream labelled by id. Streams forked with
// distinct ids from the same parent are statistically independent.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's unbiased bounded generation.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, rounded to the nearest picosecond.
func (r *RNG) ExpDuration(mean Duration) Duration {
	return Duration(r.Exp(float64(mean)) + 0.5)
}

// Normal returns a normally distributed value with mean mu and standard
// deviation sigma, using the Box-Muller transform.
func (r *RNG) Normal(mu, sigma float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mu + sigma*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	factor := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * factor
	r.hasSpare = true
	return mu + sigma*u*factor
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	r.Shuffle(out)
}

// Shuffle permutes s uniformly at random in place (Fisher-Yates).
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
