package sim

// Engine is a deterministic discrete-event simulator. Events are closures
// scheduled at absolute virtual times; ties are broken by scheduling order so
// that a run is a pure function of its inputs and RNG seeds.
//
// The zero value is not ready to use; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	heap   eventHeap
	halted bool

	// Executed counts events dispatched since construction; useful for
	// reporting simulator throughput in benchmarks.
	Executed uint64
}

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for equal times
	fn  func()
}

type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release closure for GC
	*h = old[:n]
	h.siftDown(0)
	return top
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		small := left
		if right := left + 1; right < n && h.less(right, left) {
			small = right
		}
		if !h.less(small, i) {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{heap: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug and silently clamping would corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past: " + t.String() + " < " + e.now.String())
	}
	e.seq++
	e.heap.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay " + d.String())
	}
	e.At(e.now.Add(d), fn)
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Run dispatches events until the queue drains or Halt is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		ev := e.heap.pop()
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	return e.now
}

// RunUntil dispatches events with timestamps <= deadline, leaving later
// events queued, and advances the clock to exactly the deadline. It returns
// true if the queue still holds events (i.e. the simulation was cut short).
func (e *Engine) RunUntil(deadline Time) bool {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		if e.heap[0].at > deadline {
			e.now = deadline
			return true
		}
		ev := e.heap.pop()
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return len(e.heap) > 0
}
