package sim

// Engine is a deterministic discrete-event simulator. Events are scheduled
// at absolute virtual times; ties are broken by scheduling order so that a
// run is a pure function of its inputs and RNG seeds.
//
// Two scheduling APIs share one queue and one FIFO sequence space:
//
//   - the typed fast path, Schedule/ScheduleAfter, takes an Event value.
//     Callers pre-bind their handlers (typically a pooled struct or a model
//     object that implements Event), so steady-state scheduling performs no
//     heap allocation;
//   - the closure path, At/After, wraps func() values in engine-pooled
//     adapters. It allocates only what the closure itself captures.
//
// The pending-event set is a 4-ary implicit heap ordered by timestamp
// alone. Timestamps are 8-byte keys in their own array, so the four
// children of a heap node share half a cache line and the min-child
// selection is branch-free integer arithmetic — the sift loops execute no
// data-dependent branches, which is where a comparison-based queue spends
// most of its time. FIFO order among equal timestamps is restored at
// dispatch: when the popped root's timestamp still matches the new root,
// the engine drains the whole tie group and sorts it by sequence number
// (a handful of entries, insertion-sorted) before running it.
//
// The zero value is not ready to use; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	ats    []int64 // heap keys: timestamps, ordered by the 4-ary heap
	ents   []entry // parallel payloads: FIFO sequence + event
	halted bool
	fnFree *funcEvent

	// Tie group being dispatched: entries sharing one timestamp, sorted
	// by seq. bi indexes the next entry to dispatch.
	batch   []entry
	batchAt Time
	bi      int

	// Executed counts events dispatched since construction; useful for
	// reporting simulator throughput (events/sec) in benchmarks.
	Executed uint64
}

// Event is the typed unit of work of the fast path. Run is invoked with the
// engine clock already advanced to the event's timestamp; handlers that need
// the time read e.Now(). Implementations that want zero-allocation
// scheduling keep the Event value alive across schedules (a free list, or
// the model object itself).
type Event interface {
	Run(e *Engine)
}

// entry is the payload of one queue slot: the FIFO tie-break and the event.
type entry struct {
	seq uint64
	ev  Event
}

// funcEvent adapts the closure API onto the typed queue. Instances are
// recycled through the engine's free list, so At/After do not allocate an
// adapter per call.
type funcEvent struct {
	fn   func()
	next *funcEvent
}

func (f *funcEvent) Run(e *Engine) {
	fn := f.fn
	f.fn = nil
	f.next = e.fnFree
	e.fnFree = f
	fn()
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{ats: make([]int64, 0, 1024), ents: make([]entry, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.ats) + len(e.batch) - e.bi }

// Census is a snapshot of an engine's queue and pool occupancy, taken by the
// audit layer (internal/check) at checkpoint barriers to detect event leaks:
// every pooled model event is either queued, in a mailbox, or parked on a
// free list, so a cross-shard balance that drifts means a leak or a
// double-free.
type Census struct {
	// Pending counts queued events, including the tie batch being
	// dispatched (and, for sharded engines, undelivered mailbox relays).
	Pending int
	// FreeFuncEvents counts recycled closure adapters parked on the
	// engine's free list.
	FreeFuncEvents int
}

// Census walks the engine's free list and queue counters. Call only between
// dispatches (at a barrier, or while the engine is not running).
func (e *Engine) Census() Census {
	n := 0
	for f := e.fnFree; f != nil; f = f.next {
		n++
	}
	return Census{Pending: e.Pending(), FreeFuncEvents: n}
}

// Schedule enqueues ev to run at absolute time t (typed fast path).
// Scheduling in the past panics: it is always a model bug and silently
// clamping would corrupt causality.
func (e *Engine) Schedule(t Time, ev Event) {
	if t < e.now {
		panic("sim: event scheduled in the past: " + t.String() + " < " + e.now.String())
	}
	e.seq++
	e.push(int64(t), entry{seq: e.seq, ev: ev})
}

// ScheduleAfter enqueues ev to run d after the current time.
func (e *Engine) ScheduleAfter(d Duration, ev Event) {
	if d < 0 {
		panic("sim: negative delay " + d.String())
	}
	e.Schedule(e.now.Add(d), ev)
}

// ScheduleKey enqueues ev to run at absolute time t with an explicit
// tie-break key: among events sharing a timestamp, dispatch order is
// ascending key. Models that must execute identically regardless of how
// their actors are spread across shards use per-actor key streams
// (see Actor) instead of the engine-global FIFO counter, so the dispatch
// order at every timestamp is a pure function of the model, not of queue
// insertion order.
//
// Keys share the sequence space of Schedule's FIFO counter; mixing the two
// on one engine is safe but only FIFO-deterministic for the Schedule side.
func (e *Engine) ScheduleKey(t Time, key uint64, ev Event) {
	if t < e.now {
		panic("sim: event scheduled in the past: " + t.String() + " < " + e.now.String())
	}
	e.push(int64(t), entry{seq: key, ev: ev})
}

// At schedules fn to run at absolute time t (closure path).
func (e *Engine) At(t Time, fn func()) {
	f := e.fnFree
	if f != nil {
		e.fnFree = f.next
		f.next = nil
	} else {
		f = new(funcEvent)
	}
	f.fn = fn
	e.Schedule(t, f)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay " + d.String())
	}
	e.At(e.now.Add(d), fn)
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// peekAt returns the earliest pending timestamp; callers check Pending()>0.
func (e *Engine) peekAt() Time {
	if e.bi < len(e.batch) {
		return e.batchAt
	}
	return Time(e.ats[0])
}

// next removes and returns the earliest pending event, FIFO among ties.
func (e *Engine) next() (Time, Event) {
	if e.bi < len(e.batch) {
		ev := e.batch[e.bi].ev
		e.batch[e.bi].ev = nil
		e.bi++
		return e.batchAt, ev
	}
	at := e.ats[0]
	en := e.pop()
	if len(e.ats) == 0 || e.ats[0] != at {
		return Time(at), en.ev // sole event at this timestamp
	}
	// Tie group: drain every entry at this timestamp and restore FIFO
	// order by sequence number.
	b := append(e.batch[:0], en)
	for len(e.ats) > 0 && e.ats[0] == at {
		b = append(b, e.pop())
	}
	// Insertion sort: tie groups are small (same-time kicks and credit
	// returns), and the pop order is already mostly sorted.
	for i := 1; i < len(b); i++ {
		x := b[i]
		j := i
		for j > 0 && b[j-1].seq > x.seq {
			b[j] = b[j-1]
			j--
		}
		b[j] = x
	}
	ev := b[0].ev
	b[0].ev = nil
	e.batch, e.batchAt, e.bi = b, Time(at), 1
	return Time(at), ev
}

// Run dispatches events until the queue drains or Halt is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.halted = false
	for e.Pending() > 0 && !e.halted {
		at, ev := e.next()
		e.now = at
		e.Executed++
		ev.Run(e)
	}
	e.shrinkIfDrained()
	return e.now
}

// RunUntil dispatches events with timestamps <= deadline, leaving later
// events queued, and advances the clock to exactly the deadline. It returns
// true if the queue still holds events (i.e. the simulation was cut short).
func (e *Engine) RunUntil(deadline Time) bool {
	e.halted = false
	for e.Pending() > 0 && !e.halted {
		if e.peekAt() > deadline {
			e.now = deadline
			return true
		}
		at, ev := e.next()
		e.now = at
		e.Executed++
		ev.Run(e)
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.shrinkIfDrained()
	return e.Pending() > 0
}

// RunBefore dispatches every event with timestamp strictly less than end,
// leaving later events queued. Unlike RunUntil it does not advance the clock
// to end when the queue drains early: the sharded engine owns the final
// clock advance (AdvanceTo) so a shard that goes idle mid-epoch can still
// accept mailbox deliveries timestamped inside the epoch.
func (e *Engine) RunBefore(end Time) {
	e.halted = false
	for e.Pending() > 0 && !e.halted {
		if e.peekAt() >= end {
			return
		}
		at, ev := e.next()
		e.now = at
		e.Executed++
		ev.Run(e)
	}
}

// NextTime returns the earliest pending timestamp. Callers must check
// Pending() > 0 first.
func (e *Engine) NextTime() Time { return e.peekAt() }

// AdvanceTo moves the clock forward to t if it is not already past it.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// shrinkIfDrained releases oversized queue backing arrays once the run has
// drained, so a burst (e.g. a saturation experiment) does not pin its
// high-water-mark memory for the life of the engine.
func (e *Engine) shrinkIfDrained() {
	if e.Pending() > 0 {
		return
	}
	if cap(e.ats) > 4096 {
		e.ats = make([]int64, 0, 1024)
		e.ents = make([]entry, 0, 1024)
	}
	if cap(e.batch) > 256 {
		e.batch, e.bi = nil, 0
	}
}

// --- 4-ary implicit heap ---
//
// Children of node i are 4i+1..4i+4; the parent of i is (i-1)/4. Both sift
// directions move a hole instead of swapping, and the sift-down selects the
// minimum child with sign-mask arithmetic instead of compare branches.

func (e *Engine) push(at int64, en entry) {
	ks := append(e.ats, at)
	vs := append(e.ents, en)
	i := len(ks) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if ks[p] <= at {
			break
		}
		ks[i] = ks[p]
		vs[i] = vs[p]
		i = p
	}
	ks[i] = at
	vs[i] = en
	e.ats = ks
	e.ents = vs
}

// pop removes the root (an earliest-timestamp entry; FIFO among ties is the
// caller's job) and re-establishes the heap.
func (e *Engine) pop() entry {
	ks, vs := e.ats, e.ents
	top := vs[0]
	n := len(ks) - 1
	at, en := ks[n], vs[n]
	vs[n] = entry{} // release the Event reference for GC
	ks, vs = ks[:n], vs[:n]
	e.ats, e.ents = ks, vs
	if n == 0 {
		return top
	}

	// Sift the displaced last entry down from the root hole.
	i := 0
	for {
		c := i<<2 + 1
		if c+3 < n {
			// Branch-free min of the four children: tournament of
			// sign-mask selects (timestamps differ by < 2^62, so the
			// subtractions cannot overflow).
			a0, a1, a2, a3 := ks[c], ks[c+1], ks[c+2], ks[c+3]
			d01 := a1 - a0
			m01 := d01 >> 63 // all ones iff a1 < a0
			k01 := a0 + d01&m01
			i01 := c - int(m01)
			d23 := a3 - a2
			m23 := d23 >> 63
			k23 := a2 + d23&m23
			i23 := c + 2 - int(m23)
			d := k23 - k01
			m := d >> 63
			mk := k01 + d&m
			min := i01 ^ (i01^i23)&int(m)
			if at <= mk {
				break
			}
			ks[i] = mk
			vs[i] = vs[min]
			i = min
			continue
		}
		// Partial last group (0-3 children).
		if c >= n {
			break
		}
		min, mk := c, ks[c]
		for j := c + 1; j < n; j++ {
			if ks[j] < mk {
				min, mk = j, ks[j]
			}
		}
		if at <= mk {
			break
		}
		ks[i] = mk
		vs[i] = vs[min]
		i = min
	}
	ks[i] = at
	vs[i] = en
	return top
}
