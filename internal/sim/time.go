// Package sim provides the discrete-event simulation kernel used by every
// network model in this repository. It offers picosecond-resolution virtual
// time, a deterministic event queue, and seeded random-number streams so that
// every experiment is exactly reproducible from its configuration.
package sim

import "fmt"

// Time is an absolute point in virtual time, measured in picoseconds from
// the start of the simulation. Picosecond resolution is required because TL
// gate delays (1.93 ps) and bit periods (16.67 ps at 60 Gbps) are far below
// a nanosecond, while full runs extend into milliseconds; int64 picoseconds
// covers ±106 days, ample for any experiment.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Picoseconds returns t as a raw picosecond count.
func (t Time) Picoseconds() int64 { return int64(t) }

// Nanoseconds returns t converted to (fractional) nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / 1e3 }

// String formats the time with an adaptive unit for readability.
func (t Time) String() string { return Duration(t).String() }

// Picoseconds returns d as a raw picosecond count.
func (d Duration) Picoseconds() int64 { return int64(d) }

// Nanoseconds returns d converted to (fractional) nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / 1e3 }

// Microseconds returns d converted to (fractional) microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e6 }

// Seconds returns d converted to (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Scale returns d multiplied by a dimensionless factor, rounding to the
// nearest picosecond.
func (d Duration) Scale(f float64) Duration {
	return Duration(float64(d)*f + 0.5)
}

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.3gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3gms", float64(d)/1e9)
	default:
		return fmt.Sprintf("%.3gs", d.Seconds())
	}
}

// Picoseconds constructs a Duration from a picosecond count.
func Picoseconds(ps int64) Duration { return Duration(ps) }

// Nanoseconds constructs a Duration from a (possibly fractional) nanosecond
// count, rounding to the nearest picosecond.
func Nanoseconds(ns float64) Duration { return Duration(ns*1e3 + 0.5) }

// Microseconds constructs a Duration from a microsecond count.
func Microseconds(us float64) Duration { return Duration(us*1e6 + 0.5) }

// SerializationTime returns how long it takes to place size bytes on a link
// of the given data rate in bits per second.
func SerializationTime(sizeBytes int, bitsPerSecond float64) Duration {
	bits := float64(sizeBytes) * 8
	return Duration(bits/bitsPerSecond*1e12 + 0.5)
}
