package sim

import (
	"testing"
)

// tactor is a test actor: it hashes the times and order of every event it
// executes, so two runs agree iff every actor saw the same events in the
// same order.
type tactor struct {
	id   int
	sh   *Shard
	act  Actor
	hash uint64
	runs int
}

// token bounces between actors with delays >= the lookahead, carrying its
// own RNG so delay draws are a function of the token, not the shard layout.
type token struct {
	actors []*tactor
	at     int
	hops   int
	rng    *RNG
}

func (tk *token) Run(e *Engine) {
	a := tk.actors[tk.at]
	a.hash = a.hash*1099511628211 ^ uint64(e.Now()) ^ uint64(a.runs)
	a.runs++
	if tk.hops == 0 {
		return
	}
	tk.hops--
	tk.at = (tk.at + 1 + tk.rng.Intn(len(tk.actors)-1)) % len(tk.actors)
	next := tk.actors[tk.at]
	// Delay is lookahead plus a sometimes-zero jitter, so epochs regularly
	// see boundary-exact handoffs and same-time ties.
	d := Duration(100*Nanosecond) + Duration(tk.rng.Intn(3))*Duration(50*Nanosecond)
	a.sh.Post(next.sh, e.Now().Add(d), a.act.Next(), tk)
}

// runTokenRing executes the token model on k shards and returns the
// per-actor (hash, runs) observations plus total executed events.
func runTokenRing(k, nActors, nTokens, hops int, deadline Time) ([]uint64, []int, uint64) {
	se := NewShardedEngine(k, Duration(100*Nanosecond))
	actors := make([]*tactor, nActors)
	for i := range actors {
		sh := se.Shard(i % k)
		actors[i] = &tactor{id: i, sh: sh, act: MakeActor(uint32(i + 1))}
	}
	for j := 0; j < nTokens; j++ {
		a := actors[j%nActors]
		tk := &token{actors: actors, at: j % nActors, hops: hops, rng: NewRNG(uint64(j + 1))}
		a.sh.Eng.ScheduleKey(0, a.act.Next(), tk)
	}
	se.RunUntil(deadline)
	hashes := make([]uint64, nActors)
	runs := make([]int, nActors)
	for i, a := range actors {
		hashes[i] = a.hash
		runs[i] = a.runs
	}
	return hashes, runs, se.Executed()
}

func TestShardedMatchesSerial(t *testing.T) {
	deadline := Time(1 * Millisecond)
	refHash, refRuns, refExec := runTokenRing(1, 13, 9, 400, deadline)
	if refExec == 0 {
		t.Fatal("reference run executed nothing")
	}
	for _, k := range []int{2, 3, 4, 8} {
		hash, runs, exec := runTokenRing(k, 13, 9, 400, deadline)
		if exec != refExec {
			t.Errorf("k=%d: executed %d events, serial executed %d", k, exec, refExec)
		}
		for i := range refHash {
			if hash[i] != refHash[i] || runs[i] != refRuns[i] {
				t.Errorf("k=%d actor %d: (hash,runs)=(%x,%d), serial (%x,%d)",
					k, i, hash[i], runs[i], refHash[i], refRuns[i])
			}
		}
	}
}

func TestShardedRunUntilResume(t *testing.T) {
	// Splitting a run at an arbitrary deadline must not change the outcome.
	full, fullRuns, fullExec := runTokenRing(4, 7, 5, 200, Time(1*Millisecond))

	se := NewShardedEngine(4, Duration(100*Nanosecond))
	actors := make([]*tactor, 7)
	for i := range actors {
		actors[i] = &tactor{id: i, sh: se.Shard(i % 4), act: MakeActor(uint32(i + 1))}
	}
	for j := 0; j < 5; j++ {
		a := actors[j%7]
		tk := &token{actors: actors, at: j % 7, hops: 200, rng: NewRNG(uint64(j + 1))}
		a.sh.Eng.ScheduleKey(0, a.act.Next(), tk)
	}
	if more := se.RunUntil(Time(3 * Microsecond)); !more {
		t.Fatal("expected events past the mid-run deadline")
	}
	for i := 0; i < 4; i++ {
		if now := se.Shard(i).Eng.Now(); now != Time(3*Microsecond) {
			t.Fatalf("shard %d clock = %v after RunUntil, want 3us", i, now)
		}
	}
	se.RunUntil(Time(1 * Millisecond))
	if got := se.Executed(); got != fullExec {
		t.Errorf("split run executed %d, one-shot %d", got, fullExec)
	}
	for i, a := range actors {
		if a.hash != full[i] || a.runs != fullRuns[i] {
			t.Errorf("actor %d: split (%x,%d), one-shot (%x,%d)", i, a.hash, a.runs, full[i], fullRuns[i])
		}
	}
}

// violator posts cross-shard with zero delay, inside the current epoch.
type violator struct {
	from, to *Shard
	act      *Actor
}

func (v *violator) Run(e *Engine) {
	v.from.Post(v.to, e.Now(), v.act.Next(), v)
}

func TestLookaheadViolationPanics(t *testing.T) {
	se := NewShardedEngine(2, Duration(100*Nanosecond))
	act := MakeActor(1)
	v := &violator{from: se.Shard(0), to: se.Shard(1), act: &act}
	se.Shard(0).Eng.ScheduleKey(0, act.Next(), v)
	defer func() {
		if recover() == nil {
			t.Error("zero-delay cross-shard post did not panic")
		}
	}()
	// Only shard 0 is runnable, so the epoch executes inline on this
	// goroutine and the panic is recoverable here.
	se.RunUntil(Time(1 * Microsecond))
}

func TestRunBeforeAndAdvanceTo(t *testing.T) {
	e := NewEngine()
	var got []Time
	rec := func() { got = append(got, e.Now()) }
	e.At(Time(10), rec)
	e.At(Time(20), rec)
	e.At(Time(30), rec)
	e.RunBefore(Time(20)) // strictly-less-than semantics
	if len(got) != 1 || got[0] != Time(10) {
		t.Fatalf("RunBefore(20) ran %v, want [10]", got)
	}
	if e.Now() != Time(10) {
		t.Errorf("clock = %v after RunBefore, want 10 (no artificial advance)", e.Now())
	}
	e.AdvanceTo(Time(15))
	if e.Now() != Time(15) {
		t.Errorf("AdvanceTo(15): clock = %v", e.Now())
	}
	e.AdvanceTo(Time(5)) // never moves backwards
	if e.Now() != Time(15) {
		t.Errorf("AdvanceTo(5) moved the clock to %v", e.Now())
	}
	e.RunBefore(Time(31))
	if len(got) != 3 {
		t.Errorf("remaining events not dispatched: %v", got)
	}
}

func TestScheduleKeyOrdersTies(t *testing.T) {
	e := NewEngine()
	var order []int
	mk := func(id int) func() { return func() { order = append(order, id) } }
	// Insert out of key order at one timestamp; dispatch must be by key.
	a1, a2, a3 := MakeActor(1), MakeActor(2), MakeActor(3)
	e.ScheduleKey(Time(100), a3.Next(), fnEvent(mk(3)))
	e.ScheduleKey(Time(100), a1.Next(), fnEvent(mk(1)))
	e.ScheduleKey(Time(100), a2.Next(), fnEvent(mk(2)))
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("dispatch order %v, want [1 2 3]", order)
	}
}

// fnEvent is a throwaway Event for tests.
type fnEvent func()

func (f fnEvent) Run(*Engine) { f() }
