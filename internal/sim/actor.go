package sim

// Actor is a per-model-object tie-break key stream for ScheduleKey. The key
// is the actor id in the high 32 bits and a monotonically increasing draw
// counter in the low 32, so:
//
//   - keys from one actor are strictly increasing in the order the actor
//     draws them, and
//   - keys from distinct actors never collide.
//
// Because an actor only draws keys while one of its own events is executing
// (or during deterministic pre-run setup), the sequence of keys it draws —
// and therefore the dispatch order among same-time events — is a pure
// function of the model, independent of how actors are packed onto shards.
//
// Actor ids must be >= 1: the engine-global FIFO counter used by the legacy
// Schedule path lives below 1<<32, and id 0 would collide with it.
type Actor uint64

// MakeActor returns a fresh key stream for actor id (id >= 1).
func MakeActor(id uint32) Actor {
	if id == 0 {
		panic("sim: actor id must be >= 1")
	}
	return Actor(id) << 32
}

// Next returns the current key and advances the stream.
func (a *Actor) Next() uint64 {
	k := uint64(*a)
	*a++
	return k
}
