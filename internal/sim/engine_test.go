package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %v, want 30ps", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("dispatch order = %v, want [1 2 3]", got)
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events dispatched out of order at %d: %v", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired int
	var recurse func()
	recurse = func() {
		fired++
		if fired < 10 {
			e.After(7, recurse)
		}
	}
	e.At(0, recurse)
	end := e.Run()
	if fired != 10 {
		t.Errorf("fired = %d, want 10", fired)
	}
	if end != 63 {
		t.Errorf("end = %v, want 63ps", end)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 5 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5 (halt ignored)", count)
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.At(Time(i*10), func() { count++ })
	}
	more := e.RunUntil(55)
	if !more {
		t.Error("RunUntil reported drained queue with events left")
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 55 {
		t.Errorf("now = %v, want 55ps", e.Now())
	}
	more = e.RunUntil(1000)
	if more {
		t.Error("RunUntil reported pending events after drain")
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 1000 {
		t.Errorf("now = %v, want clock advanced to deadline", e.Now())
	}
}

func TestEngineMonotoneDispatchProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.At(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 42; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed != 42 {
		t.Errorf("Executed = %d, want 42", e.Executed)
	}
}

// TestEngineFIFOStress hammers the equal-time tie path with interleaved
// closure (At/After) and typed (Schedule/ScheduleAfter) scheduling: many
// events collapse onto few distinct timestamps, events reschedule onto the
// time currently being dispatched, and the engine must still dispatch every
// tie group in exact scheduling order despite event pooling and the
// tie-batch drain in the heap.
func TestEngineFIFOStress(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(7)
	var got []rec
	seq := 0
	schedule := func(t Time) {
		s := seq
		seq++
		if s%2 == 0 {
			e.At(t, func() { got = append(got, rec{e.Now(), s}) })
		} else {
			e.Schedule(t, recEvent{&got, s})
		}
	}
	// Phase 1: 2000 events over only 8 distinct times, mixed APIs.
	for i := 0; i < 2000; i++ {
		schedule(Time(rng.Intn(8)))
	}
	// Phase 2: events that reschedule onto their own dispatch time (the new
	// event must run after every already-queued event at that time).
	for i := 0; i < 50; i++ {
		at := Time(10 + rng.Intn(4))
		s := seq
		seq++
		e.At(at, func() {
			got = append(got, rec{e.Now(), s})
			s2 := seq
			seq++
			e.Schedule(at, recEvent{&got, s2})
		})
	}
	e.Run()
	if len(got) != seq {
		t.Fatalf("dispatched %d events, scheduled %d", len(got), seq)
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time went backwards at %d: %+v after %+v", i, got[i], got[i-1])
		}
		if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
			t.Fatalf("FIFO violated within tie group at %d: seq %d after %d (t=%v)",
				i, got[i].seq, got[i-1].seq, got[i].at)
		}
	}
}

type rec struct {
	at  Time
	seq int
}

type recEvent struct {
	got *[]rec
	seq int
}

func (r recEvent) Run(e *Engine) {
	*r.got = append(*r.got, rec{e.Now(), r.seq})
}

// TestEngineClosureTypedEquivalent schedules the same workload once through
// the closure API and once through the typed API and requires the identical
// dispatch order: At/After are thin wrappers and must not perturb ordering.
func TestEngineClosureTypedEquivalent(t *testing.T) {
	run := func(typed bool) []int {
		e := NewEngine()
		rng := NewRNG(3)
		var got []int
		for i := 0; i < 500; i++ {
			i := i
			at := Time(rng.Intn(20))
			if typed {
				e.Schedule(at, orderEvent{&got, i})
			} else {
				e.At(at, func() { got = append(got, i) })
			}
		}
		e.Run()
		return got
	}
	closure, typed := run(false), run(true)
	for i := range closure {
		if closure[i] != typed[i] {
			t.Fatalf("closure and typed paths diverge at %d: %d vs %d", i, closure[i], typed[i])
		}
	}
}

type orderEvent struct {
	got *[]int
	i   int
}

func (o orderEvent) Run(*Engine) { *o.got = append(*o.got, o.i) }

func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	rng := NewRNG(1)
	b.ReportAllocs()
	var fn func()
	n := 0
	fn = func() {
		if n < b.N {
			n++
			e.After(Duration(rng.Intn(1000)+1), fn)
		}
	}
	// Keep 1000 events in flight, a realistic queue depth.
	for i := 0; i < 1000 && n < b.N; i++ {
		n++
		e.At(Time(rng.Intn(1000)), fn)
	}
	b.ResetTimer()
	e.Run()
}

// tbEvent is the typed-path analogue of the closure benchmark above: a
// single event rescheduling itself, the steady-state pattern of the
// converted network models.
type tbEvent struct {
	rng *RNG
	n   int
	max int
}

func (ev *tbEvent) Run(e *Engine) {
	if ev.n < ev.max {
		ev.n++
		e.ScheduleAfter(Duration(ev.rng.Intn(1000)+1), ev)
	}
}

func BenchmarkEngineScheduleDispatchTyped(b *testing.B) {
	e := NewEngine()
	rng := NewRNG(1)
	b.ReportAllocs()
	ev := &tbEvent{rng: rng, max: b.N}
	// Keep 1000 events in flight, a realistic queue depth.
	for i := 0; i < 1000 && ev.n < b.N; i++ {
		ev.n++
		e.Schedule(Time(rng.Intn(1000)), ev)
	}
	b.ResetTimer()
	e.Run()
}
