package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %v, want 30ps", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("dispatch order = %v, want [1 2 3]", got)
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events dispatched out of order at %d: %v", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired int
	var recurse func()
	recurse = func() {
		fired++
		if fired < 10 {
			e.After(7, recurse)
		}
	}
	e.At(0, recurse)
	end := e.Run()
	if fired != 10 {
		t.Errorf("fired = %d, want 10", fired)
	}
	if end != 63 {
		t.Errorf("end = %v, want 63ps", end)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 5 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5 (halt ignored)", count)
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.At(Time(i*10), func() { count++ })
	}
	more := e.RunUntil(55)
	if !more {
		t.Error("RunUntil reported drained queue with events left")
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 55 {
		t.Errorf("now = %v, want 55ps", e.Now())
	}
	more = e.RunUntil(1000)
	if more {
		t.Error("RunUntil reported pending events after drain")
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 1000 {
		t.Errorf("now = %v, want clock advanced to deadline", e.Now())
	}
}

func TestEngineMonotoneDispatchProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.At(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 42; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed != 42 {
		t.Errorf("Executed = %d, want 42", e.Executed)
	}
}

func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	rng := NewRNG(1)
	b.ReportAllocs()
	var fn func()
	n := 0
	fn = func() {
		if n < b.N {
			n++
			e.After(Duration(rng.Intn(1000)+1), fn)
		}
	}
	// Keep 1000 events in flight, a realistic queue depth.
	for i := 0; i < 1000 && n < b.N; i++ {
		n++
		e.At(Time(rng.Intn(1000)), fn)
	}
	b.ResetTimer()
	e.Run()
}
