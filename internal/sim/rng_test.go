package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds produced %d identical draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	var orAll uint64
	for i := 0; i < 10; i++ {
		orAll |= r.Uint64()
	}
	if orAll == 0 {
		t.Error("zero seed produced all-zero outputs")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	a := parent.Fork(1)
	b := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked streams produced %d identical draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 7)
	const draws = 70000
	for i := 0; i < draws; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		// Expect 10000 +- generous 5% band.
		if c < 9500 || c > 10500 {
			t.Errorf("bucket %d has %d draws, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(42)
	}
	if mean := sum / n; math.Abs(mean-42) > 1 {
		t.Errorf("exponential mean = %v, want ~42", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9) > 0.2 {
		t.Errorf("normal variance = %v, want ~9", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	out := make([]int, 257)
	r.Perm(out)
	seen := make([]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: saw %d twice or out of range", v)
		}
		seen[v] = true
	}
}

func TestShuffleUniformity(t *testing.T) {
	// Chi-square style sanity check on 3-element shuffles: all 6 orders
	// should occur roughly equally.
	r := NewRNG(17)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		s := []int{0, 1, 2}
		r.Shuffle(s)
		counts[[3]int{s[0], s[1], s[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct orders, want 6", len(counts))
	}
	for k, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("order %v occurred %d times, want ~10000", k, c)
		}
	}
}

func TestExpDurationPositive(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 1000; i++ {
		if d := r.ExpDuration(1000); d < 0 {
			t.Fatalf("negative duration %v", d)
		}
	}
}
