// Benchmarks that regenerate each table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at a reduced
// (CI-friendly) scale and reports the headline quantities as custom metrics,
// so `go test -bench=. -benchmem` doubles as a results summary. Use
// cmd/figures -scale full for the paper-sized runs.
package baldur_test

import (
	"math"
	"testing"

	"baldur/internal/cost"
	"baldur/internal/dropmodel"
	"baldur/internal/encoding"
	"baldur/internal/exp"
	"baldur/internal/gatesim"
	"baldur/internal/packaging"
	"baldur/internal/power"
	"baldur/internal/reliability"
	"baldur/internal/switchckt"
	"baldur/internal/tl"
)

// benchScale is the per-iteration experiment size.
func benchScale() exp.Scale {
	sc := exp.Quick
	sc.PacketsPerNode = 60
	return sc
}

// BenchmarkTable5 regenerates Table V: drop rate, gate count and latency
// versus path multiplicity (transpose pattern, load 0.7).
func BenchmarkTable5(b *testing.B) {
	b.ReportAllocs()
	var rows []exp.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Table5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].DropRatePct, "m1_drop_%")
	b.ReportMetric(rows[3].DropRatePct, "m4_drop_%")
	b.ReportMetric(float64(rows[3].Gates), "m4_gates")
	b.ReportMetric(rows[3].LatencyNS, "m4_latency_ns")
}

// benchFig6Pattern regenerates one Fig 6 panel: average/tail latency versus
// load for every network.
func benchFig6Pattern(b *testing.B, pattern string) {
	b.ReportAllocs()
	var res []exp.Fig6Result
	loads := []float64{0.3, 0.7}
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.Fig6(benchScale(), []string{pattern}, loads, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	var baldur07, ideal07, worst07 float64
	for _, p := range res[0].Points {
		if p.Load != 0.7 {
			continue
		}
		switch p.Network {
		case "baldur":
			baldur07 = p.AvgNS
		case "ideal":
			ideal07 = p.AvgNS
		}
		if p.Network != "ideal" && p.AvgNS > worst07 {
			worst07 = p.AvgNS
		}
	}
	b.ReportMetric(baldur07, "baldur_avg_ns@0.7")
	b.ReportMetric(baldur07/ideal07, "baldur_vs_ideal_x")
	b.ReportMetric(worst07/baldur07, "baldur_speedup_worst_x")
}

// BenchmarkFig6RandomPermutation regenerates Fig 6(a).
func BenchmarkFig6RandomPermutation(b *testing.B) { benchFig6Pattern(b, "random_permutation") }

// BenchmarkFig6Transpose regenerates Fig 6(b).
func BenchmarkFig6Transpose(b *testing.B) { benchFig6Pattern(b, "transpose") }

// BenchmarkFig6Bisection regenerates Fig 6(c).
func BenchmarkFig6Bisection(b *testing.B) { benchFig6Pattern(b, "bisection") }

// BenchmarkFig6GroupPermutation regenerates Fig 6(d).
func BenchmarkFig6GroupPermutation(b *testing.B) { benchFig6Pattern(b, "group_permutation") }

// BenchmarkFig7 regenerates Fig 7: hotspot, ping-pongs and the four HPC
// workloads, reporting the cross-workload geomean slowdowns of the two
// strongest baselines relative to Baldur.
func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	var rows []exp.Fig7Row
	sc := benchScale()
	sc.PacketsPerNode = 40
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Fig7(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	geo := func(net string) float64 {
		prod, n := 1.0, 0
		for _, r := range rows {
			if base := r.Avg["baldur"]; base > 0 && r.Avg[net] > 0 {
				prod *= r.Avg[net] / base
				n++
			}
		}
		if n == 0 {
			return 0
		}
		// n-th root via successive halving is overkill; use math.Pow.
		return pow(prod, 1/float64(n))
	}
	b.ReportMetric(geo("dragonfly"), "dragonfly_geomean_x")
	b.ReportMetric(geo("fattree"), "fattree_geomean_x")
	b.ReportMetric(geo("multibutterfly"), "multibutterfly_geomean_x")
}

// BenchmarkFig8 regenerates the power-versus-scale sweep.
func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	var rows []power.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = power.Fig8()
	}
	last := rows[len(rows)-1]
	first := rows[0]
	b.ReportMetric(first.Baldur.Total(), "baldur_W_at_1K")
	b.ReportMetric(last.Baldur.Total(), "baldur_W_at_1M")
	b.ReportMetric(last.DF.Total()/last.Baldur.Total(), "improvement_vs_dragonfly_x")
	b.ReportMetric(last.MB.Total()/last.Baldur.Total(), "improvement_vs_mb_x")
}

// BenchmarkFig9 regenerates the switch-power sensitivity analysis at 1M.
func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	var rows []power.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = power.Fig9()
	}
	pess := rows[1]
	b.ReportMetric(pess.DF/pess.Baldur, "pessimistic_vs_dragonfly_x")
	b.ReportMetric(pess.FT/pess.Baldur, "pessimistic_vs_fattree_x")
	b.ReportMetric(pess.MB/pess.Baldur, "pessimistic_vs_mb_x")
}

// BenchmarkFig10 regenerates the cost-versus-scale sweep.
func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	var at1K, at1M cost.Breakdown
	for i := 0; i < b.N; i++ {
		at1K = cost.Baldur(1024)
		at1M = cost.Baldur(1 << 20)
	}
	b.ReportMetric(at1K.Total(), "usd_per_node_1K")
	b.ReportMetric(at1M.Total(), "usd_per_node_1M")
	b.ReportMetric(at1K.Interposers/at1K.Total(), "interposer_share")
}

// BenchmarkDropModel regenerates the Sec IV-E worst-case wave analysis at a
// 64K-node scale.
func BenchmarkDropModel(b *testing.B) {
	b.ReportAllocs()
	var r dropmodel.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = dropmodel.Simulate(1<<16, 5, dropmodel.RandomPerm, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DropRate()*100, "m5_wave_drop_%")
}

// BenchmarkReliability regenerates the Sec IV-F Monte-Carlo decode check.
func BenchmarkReliability(b *testing.B) {
	b.ReportAllocs()
	var errors, bits int
	for i := 0; i < b.N; i++ {
		errors, bits = reliability.MonteCarloDecode(20000, 8, 0.875, uint64(i))
	}
	b.ReportMetric(float64(errors), "errors")
	b.ReportMetric(float64(bits), "bits")
	b.ReportMetric(reliability.ErrorProbability(0.42, 1.237)*1e9, "analytic_x1e-9")
}

// BenchmarkPackaging regenerates the Sec IV-G cabinet arithmetic.
func BenchmarkPackaging(b *testing.B) {
	b.ReportAllocs()
	var plan packaging.Plan
	for i := 0; i < b.N; i++ {
		plan = packaging.PlanFor(1 << 20)
	}
	b.ReportMetric(float64(plan.Cabinets), "cabinets_1M")
	b.ReportMetric(float64(plan.CabinetsByPower), "power_only_cabinets")
}

// BenchmarkBaldurSimulator measures raw simulator throughput
// (packets simulated per second of wall time).
func BenchmarkBaldurSimulator(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	totalPackets := 0
	var totalEvents uint64
	for i := 0; i < b.N; i++ {
		p, err := exp.RunOpenLoop("baldur", "random_permutation", 0.7, sc)
		if err != nil {
			b.Fatal(err)
		}
		totalEvents += p.Events
		totalPackets += sc.Nodes * sc.PacketsPerNode
	}
	b.ReportMetric(float64(totalPackets)/b.Elapsed().Seconds(), "packets/s")
	b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkBaldurSimulatorSharded runs the same workload as
// BenchmarkBaldurSimulator across 8 conservative-parallel shards.
// Statistics are bit-identical to the serial run; the packets/s ratio
// between the two benchmarks is the parallel speedup on this machine.
func BenchmarkBaldurSimulatorSharded(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	sc.Shards = 8
	totalPackets := 0
	var totalEvents, totalEpochs uint64
	for i := 0; i < b.N; i++ {
		p, epochs, err := exp.RunOpenLoopEpochs("baldur", "random_permutation", 0.7, sc)
		if err != nil {
			b.Fatal(err)
		}
		totalEvents += p.Events
		totalEpochs += epochs
		totalPackets += sc.Nodes * sc.PacketsPerNode
	}
	b.ReportMetric(float64(totalPackets)/b.Elapsed().Seconds(), "packets/s")
	b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(totalEpochs)/b.Elapsed().Seconds(), "epochs/s")
}

// BenchmarkGateCounts keeps the Table V device model honest.
func BenchmarkGateCounts(b *testing.B) {
	b.ReportAllocs()
	var g int
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 5; m++ {
			g += tl.GatesPerSwitch(m)
		}
	}
	b.ReportMetric(float64(tl.GatesPerSwitch(4)), "gates_m4")
}

// pow guards math.Pow against non-positive bases from empty geomeans.
func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// BenchmarkSwitchCircuit measures gate-level simulation throughput: one
// full packet through the Fig 4 netlist per iteration.
func BenchmarkSwitchCircuit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := switchckt.Build(gatesim.Config{})
		pkt, end := encoding.EncodeFrame(0, []bool{false, true}, []byte{0xA5, 0x3C})
		s.Circuit.PlaySignal(s.In[0], pkt)
		s.Run(end + 2_000_000) // +2 ns of settle
	}
	b.ReportMetric(float64(switchckt.Build(gatesim.Config{}).GateCount()), "gates")
}

// BenchmarkDropModel1M runs the worst-case wave at the full million-node
// scale — the workload the paper's in-house tool was built for.
func BenchmarkDropModel1M(b *testing.B) {
	b.ReportAllocs()
	if testing.Short() {
		b.Skip("1M-node wave in -short mode")
	}
	var r dropmodel.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = dropmodel.Simulate(1<<20, 5, dropmodel.RandomPerm, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DropRate()*100, "m5_wave_drop_%")
}
