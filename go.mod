module baldur

go 1.22
